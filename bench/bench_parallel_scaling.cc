// Parallel dispatch scaling: pruneGreedyDP vs ParallelGreedyDpPlanner at
// 1/2/4/8 threads on the synthetic Chengdu-like city workload. Reports
// requests/sec and speedup over the sequential planner, checks that every
// parallel run reproduces the sequential results bit-for-bit (the engine's
// core guarantee), and emits BENCH_JSON lines for CI trajectories.
//
// Note: speedup is bounded by the physical cores the container grants
// (std::thread::hardware_concurrency is printed with the results); thread
// counts beyond it oversubscribe and mainly validate correctness.

#include <cstdio>
#include <thread>

#include "bench/harness.h"

using namespace urpsm;
using namespace urpsm::bench;

int main(int argc, char** argv) {
  const bool smoke = InitBench(argc, argv);
  const City city = LoadCity(/*nyc=*/false);
  Rng rng(7);
  const Defaults d;
  // Denser fleet than the figure defaults: candidate fan-out per request
  // is what the pool parallelizes, so scaling is measured where the
  // decision/planning phases dominate.
  const int worker_count = smoke ? 40 : 2 * city.default_workers;
  const std::vector<Worker> workers =
      GenerateWorkers(city.graph, worker_count, d.capacity_mean, &rng);

  std::printf("=== Parallel dispatch scaling (%s, %zu requests, %d workers, "
              "hardware threads: %u) ===\n\n",
              city.name.c_str(), city.requests.size(), worker_count,
              std::thread::hardware_concurrency());

  SimOptions base_options;
  base_options.wall_limit_seconds = EnvWallLimit();

  Simulation seq_sim(&city.graph, city.labels.get(), workers, &city.requests,
                     base_options);
  const SimReport seq = seq_sim.Run(MakePruneGreedyDpFactory({}));
  const double seq_rps =
      seq.wall_seconds > 0.0 ? seq.total_requests / seq.wall_seconds : 0.0;

  TablePrinter t({"planner", "threads", "wall (s)", "req/s", "speedup",
                  "unified cost", "identical"});
  t.AddRow({std::string(seq.algorithm), "1", TablePrinter::Num(seq.wall_seconds, 2),
            TablePrinter::Num(seq_rps, 1), "1.00",
            TablePrinter::Num(seq.unified_cost, 1), "-"});
  EmitReportJson("bench_parallel_scaling", seq,
                 {{"city", city.name}, {"threads", "1"}});

  bool all_identical = true;
  bool any_compared = false;
  for (int threads : {1, 2, 4, 8}) {
    SimOptions options = base_options;
    options.num_threads = threads;
    Simulation sim(&city.graph, city.labels.get(), workers, &city.requests,
                   options);
    const SimReport rep = sim.Run(MakeParallelGreedyDpFactory({}));
    const double rps =
        rep.wall_seconds > 0.0 ? rep.total_requests / rep.wall_seconds : 0.0;
    // A run truncated by the wall-limit kill switch stops after a
    // wall-clock-dependent number of requests; comparing it against a
    // complete (or differently truncated) run would report divergence
    // where none exists, so DNF rows are excluded from the gate.
    const bool comparable = !rep.timed_out && !seq.timed_out;
    const bool identical = comparable &&
                           rep.unified_cost == seq.unified_cost &&
                           rep.served_requests == seq.served_requests &&
                           rep.total_distance == seq.total_distance;
    any_compared = any_compared || comparable;
    all_identical = all_identical && (identical || !comparable);
    t.AddRow({std::string(rep.algorithm), std::to_string(threads),
              TablePrinter::Num(rep.wall_seconds, 2), TablePrinter::Num(rps, 1),
              TablePrinter::Num(seq.wall_seconds /
                                    std::max(1e-9, rep.wall_seconds), 2),
              TablePrinter::Num(rep.unified_cost, 1),
              !comparable ? "DNF" : identical ? "YES" : "NO"});
    EmitReportJson("bench_parallel_scaling", rep,
                   {{"city", city.name}, {"threads", std::to_string(threads)}});
  }
  std::printf("%s\n", t.ToString().c_str());

  if (!all_identical) {
    std::printf("FAIL: parallel results diverged from the sequential "
                "planner\n");
    return 1;
  }
  if (!any_compared) {
    // Every run hit the wall-limit kill switch: nothing was verified, so
    // don't print (or exit with) a claim of identity.
    std::printf("FAIL: all runs timed out before the identity gate could "
                "compare anything — raise URPSM_BENCH_WALL_LIMIT\n");
    return 1;
  }
  std::printf("parallel results bit-identical to sequential: YES\n");
  return 0;
}
