// main() for the google-benchmark binaries (bench_insertion, bench_oracle)
// that understands the repo-wide `--smoke` flag: strip it and cap the
// measuring time per benchmark so the CTest smoke entries finish in
// seconds while still exercising every registered benchmark end-to-end.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool smoke = false;
  for (auto it = args.begin(); it != args.end();) {
    if (std::strcmp(*it, "--smoke") == 0) {
      smoke = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  static char min_time[] = "--benchmark_min_time=0.001";
  if (smoke) args.push_back(min_time);

  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
