// Lemma 8 pruning ablation (Sec. 6.2 text): GreedyDP vs pruneGreedyDP on
// identical workloads. Verifies the pruning is lossless (identical
// unified cost / served rate), and reports exact-insertion evaluations,
// distance queries and wall time saved.

#include <cstdio>

#include "bench/harness.h"

using namespace urpsm;
using namespace urpsm::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  for (bool nyc : {false, true}) {
    const City city = LoadCity(nyc);
    std::printf("=== Pruning ablation (%s) ===\n\n", city.name.c_str());
    Rng rng(3);
    const Defaults d;
    const std::vector<Worker> workers = GenerateWorkers(
        city.graph, city.default_workers, d.capacity_mean, &rng);

    TablePrinter t({"variant", "unified cost", "served rate", "avg resp (ms)",
                    "dist queries", "wall (s)"});
    SimReport reports[2];
    int idx = 0;
    for (bool prune : {false, true}) {
      Simulation sim(&city.graph, city.labels.get(), workers, &city.requests,
                     SimOptions{});
      const SimReport rep = sim.Run(prune ? MakePruneGreedyDpFactory({})
                                          : MakeGreedyDpFactory({}));
      reports[idx++] = rep;
      t.AddRow({std::string(rep.algorithm),
                TablePrinter::Num(rep.unified_cost, 1),
                TablePrinter::Num(rep.served_rate, 3),
                TablePrinter::Num(rep.avg_response_ms, 3),
                std::to_string(rep.distance_queries),
                TablePrinter::Num(rep.wall_seconds, 2)});
    }
    std::printf("%s", t.ToString().c_str());
    std::printf(
        "lossless: %s | queries saved: %lld (%.1f%%) | speedup: %.2fx\n\n",
        (reports[0].served_requests == reports[1].served_requests &&
         std::abs(reports[0].unified_cost - reports[1].unified_cost) <
             1e-6 * reports[0].unified_cost)
            ? "YES"
            : "NO",
        static_cast<long long>(reports[0].distance_queries -
                               reports[1].distance_queries),
        100.0 * (reports[0].distance_queries - reports[1].distance_queries) /
            std::max<std::int64_t>(1, reports[0].distance_queries),
        reports[0].avg_response_ms /
            std::max(1e-9, reports[1].avg_response_ms));
  }
  return 0;
}
