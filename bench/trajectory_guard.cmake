# CTest guard for the tracked perf-trajectory files (bench_trajectory_guard).
#
# The four repo-root BENCH_*.json files are full-run sweeps refreshed by
# running the trajectory benches without --smoke from the repository root.
# Historically they kept getting clobbered by `ctest -L bench_smoke`, which
# ran the same binaries in smoke mode from the same directory — leaving
# millisecond-scale records marked "smoke":"1" where the full-run
# trajectory should be (ROADMAP item 1). The harness now redirects smoke
# output to BENCH_smoke_*.json in the build tree; this script is the
# tripwire that fails the test suite if smoke-sized or truncated data ever
# lands in the tracked files again.
#
# Checks, per file:
#   1. the file exists and meets its full-sweep record floor (a truncated
#      sweep — kill switch, partial overwrite — fails);
#   2. no record carries the smoke marker;
#   3. every line is one complete JSON object of the BENCH_JSON schema;
#   4. all records carry the same git_sha (one file = one bench process;
#      mixed shas mean a partial overwrite).
#
# The pipeline trajectory additionally must carry the speculation-conflict
# axis: at least one record with axis=speculation_conflict, and every such
# record must carry the incremental-planning counters (memo_hits,
# memo_misses, replans_narrowed, replans_full, replan_ms) — a file without
# them predates the eval-memo instrumentation and needs a regeneration.
#
# Usage: cmake -DREPO_ROOT=<repo> -P trajectory_guard.cmake

if(NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "trajectory_guard: pass -DREPO_ROOT=<repo>")
endif()

# Record floors: the current full sweeps write 3 (oracle), 12 (insertion),
# 18 (dispatch) and 55 (pipeline) lines; the floors leave headroom for
# sweep-point tweaks but catch a file cut off mid-run or overwritten by a
# smoke run (1-7 lines).
set(floor_oracle 3)
set(floor_insertion 9)
set(floor_dispatch 14)
set(floor_pipeline 34)

foreach(stem oracle insertion dispatch pipeline)
  set(path "${REPO_ROOT}/BENCH_${stem}.json")
  if(NOT EXISTS "${path}")
    message(FATAL_ERROR "trajectory_guard: ${path} is missing — regenerate "
      "it by running the trajectory benches (no --smoke) from the repo root")
  endif()
  file(STRINGS "${path}" lines)
  list(LENGTH lines count)
  if(count LESS ${floor_${stem}})
    message(FATAL_ERROR "trajectory_guard: ${path} has ${count} records, "
      "expected at least ${floor_${stem}} — the full sweep is truncated "
      "(or a smoke run overwrote it)")
  endif()
  set(sha "")
  set(conflict_records 0)
  foreach(line IN LISTS lines)
    if(line MATCHES "\"smoke\":\"1\"")
      message(FATAL_ERROR "trajectory_guard: ${path} contains smoke-sized "
        "records — a smoke run overwrote the full-run trajectory; "
        "regenerate it without --smoke from the repo root")
    endif()
    if(NOT line MATCHES "^\\{\"name\":\".+\"timestamp\":\"[^\"]+\"\\}$")
      message(FATAL_ERROR "trajectory_guard: malformed/truncated record in "
        "${path}: ${line}")
    endif()
    # Any record carrying latency percentiles must carry the full
    # p50/p95/p99 triple — the digest-backed accumulator emits all three,
    # so a missing p99 means the file predates the digest percentiles.
    if(line MATCHES "\"p50_ms\":" AND NOT (line MATCHES "\"p95_ms\":" AND
        line MATCHES "\"p99_ms\":"))
      message(FATAL_ERROR "trajectory_guard: record in ${path} has p50_ms "
        "but not the full p50/p95/p99 triple — regenerate with the current "
        "bench binaries: ${line}")
    endif()
    # Speculation-conflict axis records must carry the full
    # incremental-planning counter set.
    if(line MATCHES "\"axis\":\"speculation_conflict\"")
      math(EXPR conflict_records "${conflict_records} + 1")
      foreach(field memo memo_hits memo_misses replans_narrowed replans_full
              replan_ms)
        if(NOT line MATCHES "\"${field}\":")
          message(FATAL_ERROR "trajectory_guard: speculation_conflict "
            "record in ${path} is missing \"${field}\" — regenerate with "
            "the current bench binaries: ${line}")
        endif()
      endforeach()
    endif()
    string(REGEX MATCH "\"git_sha\":\"([^\"]+)\"" m "${line}")
    if(sha STREQUAL "")
      set(sha "${CMAKE_MATCH_1}")
    elseif(NOT sha STREQUAL "${CMAKE_MATCH_1}")
      message(FATAL_ERROR "trajectory_guard: ${path} mixes git_sha ${sha} "
        "and ${CMAKE_MATCH_1} — partial overwrite; regenerate the file in "
        "one run")
    endif()
  endforeach()
  if(stem STREQUAL "pipeline" AND conflict_records LESS 4)
    message(FATAL_ERROR "trajectory_guard: ${path} has ${conflict_records} "
      "speculation_conflict records, expected at least 4 (memo off/on x "
      "two thread counts) — the file predates the incremental-planning "
      "axis; regenerate it without --smoke from the repo root")
  endif()
  message(STATUS "trajectory_guard: ${path} ok (${count} records, "
    "sha ${sha})")
endforeach()
