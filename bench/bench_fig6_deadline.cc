// Fig. 6 reproduction: impact of the delivery deadline er (release + 5 to
// 25 minutes). Longer deadlines serve more requests and lower the unified
// cost; pruning saves the most distance queries here because longer
// deadlines mean more candidate workers per request (the paper reports
// 16.4-84.0 billion saved at full scale).

#include <cstdio>

#include "bench/harness.h"

using namespace urpsm;
using namespace urpsm::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  const std::vector<double> er_sweep = {5, 10, 15, 20, 25};
  for (bool nyc : {false, true}) {
    const City city = LoadCity(nyc);
    std::printf("=== Fig. 6 (%s): %d vertices, %zu requests ===\n\n",
                city.name.c_str(), city.graph.num_vertices(),
                city.requests.size());
    const Defaults d;
    const FigureResults r = RunSweep(
        city, AllAlgorithms(PlannerConfig{.alpha = d.alpha}), er_sweep,
        [&](double v, int rep, std::vector<Worker>* workers,
            std::vector<Request>* requests, SimOptions* /*options*/) {
          Rng rng(13 + static_cast<std::uint64_t>(rep) * 7717);
          *workers = GenerateWorkers(city.graph, city.default_workers,
                                     d.capacity_mean, &rng);
          *requests = city.requests;
          SetDeadlineOffsets(requests, v);
          SetPenaltyFactors(requests, city.default_penalty_factor,
                            city.labels.get());
        });
    PrintFigure("Fig. 6", "er (min)", city, r);

    TablePrinter savings({"er (min)", "GreedyDP queries",
                          "pruneGreedyDP queries", "saved"});
    for (std::size_t v = 0; v < r.value_labels.size(); ++v) {
      const auto gq = r.reports[3][v].distance_queries;
      const auto pq = r.reports[4][v].distance_queries;
      savings.AddRow({r.value_labels[v], std::to_string(gq),
                      std::to_string(pq), std::to_string(gq - pq)});
    }
    std::printf("Fig. 6 — distance queries saved by pruning (%s)\n%s\n",
                city.name.c_str(), savings.ToString().c_str());
  }
  return 0;
}
