// Fig. 4 reproduction: impact of worker capacity Kw (3, 4, 6, 10, 20).
// The paper's headline here: kinetic's (2Kw)!-shaped search fails to halt
// at large Kw (reported as DNF), while batch stays stable and
// pruneGreedyDP keeps the best unified cost / served rate.

#include <cstdio>

#include "bench/harness.h"

using namespace urpsm;
using namespace urpsm::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  const std::vector<double> kw_sweep = {3, 4, 6, 10, 20};
  for (bool nyc : {false, true}) {
    const City city = LoadCity(nyc);
    std::printf("=== Fig. 4 (%s): %d vertices, %zu requests ===\n\n",
                city.name.c_str(), city.graph.num_vertices(),
                city.requests.size());
    const Defaults d;
    const FigureResults r = RunSweep(
        city, AllAlgorithms(PlannerConfig{.alpha = d.alpha}), kw_sweep,
        [&](double v, int rep, std::vector<Worker>* workers,
            std::vector<Request>* requests, SimOptions* /*options*/) {
          Rng rng(static_cast<std::uint64_t>(v) * 17 + 3 +
                  static_cast<std::uint64_t>(rep) * 7717);
          *workers = GenerateWorkers(city.graph, city.default_workers,
                                     /*capacity_mean=*/v, &rng);
          *requests = city.requests;
        });
    PrintFigure("Fig. 4", "Kw", city, r);

    // Supplementary panel: the kinetic blow-up. At the scaled-down default
    // deadline routes stay short, hiding kinetic's (2Kw)! behaviour; with a
    // 25-minute deadline routes grow with Kw and the full-ordering search
    // cost escalates (DNF = exceeded the wall limit, as in the paper).
    std::printf("Fig. 4 supplement — kinetic blow-up at er = 25 min (%s)\n",
                city.name.c_str());
    TablePrinter blow({"Kw", "kinetic resp (ms)", "pruneGreedyDP resp (ms)",
                       "kinetic/pruneGreedyDP"});
    for (double kw : kw_sweep) {
      Rng rng(static_cast<std::uint64_t>(kw) * 17 + 3);
      std::vector<Worker> workers = GenerateWorkers(
          city.graph, city.default_workers, kw, &rng);
      std::vector<Request> requests = city.requests;
      SetDeadlineOffsets(&requests, 25.0);
      SetPenaltyFactors(&requests, city.default_penalty_factor,
                        city.labels.get());
      SimOptions options;
      options.wall_limit_seconds = EnvWallLimit();
      Simulation sim_kin(&city.graph, city.labels.get(), workers, &requests,
                         options);
      const SimReport kin = sim_kin.Run(MakeKineticFactory({}, 200000));
      Simulation sim_prune(&city.graph, city.labels.get(), workers, &requests,
                           options);
      const SimReport prune = sim_prune.Run(MakePruneGreedyDpFactory({}));
      blow.AddRow(
          {TablePrinter::Num(kw, 0),
           kin.timed_out ? "DNF" : TablePrinter::Num(kin.avg_response_ms, 3),
           TablePrinter::Num(prune.avg_response_ms, 3),
           kin.timed_out ? "DNF"
                         : TablePrinter::Num(kin.avg_response_ms /
                                                 std::max(1e-9,
                                                          prune.avg_response_ms),
                                             1)});
    }
    std::printf("%s\n", blow.ToString().c_str());
  }
  return 0;
}
