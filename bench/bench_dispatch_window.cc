// Batched dispatch-window trajectory bench: DispatchWindowPlanner swept
// over thread counts x window lengths against sequential pruneGreedyDP,
// plus the batch baseline driven through the same window plumbing.
//
// Writes BENCH_dispatch.json (one JSON object per line, the shared
// BENCH_JSON schema — every line carries hw_concurrency and num_threads)
// via the shared trajectory writer: full runs refresh the tracked
// repo-root file, smoke runs are redirected to the build tree
// (BENCH_smoke_dispatch.json) so the CTest smoke entry can never corrupt
// the full-run trajectory. Two gates: window = 0 must reproduce the
// sequential pruneGreedyDP results bit-for-bit at every thread count,
// and every real window must be bit-identical across thread counts
// (the engine's determinism contract).
//
// Note: thread counts beyond std::thread::hardware_concurrency (1 in the
// usual CI container — see the hw_concurrency field) oversubscribe and
// mainly validate determinism, not speedup.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/sim/dispatch_window.h"

using namespace urpsm;
using namespace urpsm::bench;

namespace {

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = InitBench(argc, argv);
  const City city = LoadCity(/*nyc=*/false);
  Rng rng(7);
  const Defaults d;
  const int worker_count = smoke ? 40 : 2 * city.default_workers;
  const std::vector<Worker> workers =
      GenerateWorkers(city.graph, worker_count, d.capacity_mean, &rng);

  std::printf("=== Dispatch windows (%s, %zu requests, %d workers, "
              "hardware threads: %u) ===\n\n",
              city.name.c_str(), city.requests.size(), worker_count,
              std::thread::hardware_concurrency());

  SimOptions base_options;
  base_options.wall_limit_seconds = EnvWallLimit();

  std::vector<std::string> lines;
  const auto record = [&](const SimReport& rep, double window_s) {
    std::vector<std::pair<std::string, std::string>> params = {
        {"city", city.name},
        {"window_s", Fmt(window_s)},
        {"algorithm", rep.algorithm},
        {"num_threads", std::to_string(rep.num_threads)}};
    if (smoke) params.emplace_back("smoke", "1");
    if (rep.timed_out) params.emplace_back("timed_out", "1");
    params.emplace_back("trace", rep.trace_enabled ? "1" : "0");
    const double throughput =
        rep.wall_seconds > 0.0 ? rep.total_requests / rep.wall_seconds : 0.0;
    lines.push_back(FormatJsonLine("bench_dispatch_window", params,
                                   rep.wall_seconds * 1e3, throughput,
                                   rep.p50_response_ms, rep.p95_response_ms,
                                   rep.p99_response_ms));
    EmitReportJson("bench_dispatch_window", rep,
                   {{"city", city.name}, {"window_s", Fmt(window_s)}});
  };

  // Sequential reference: the per-request pruneGreedyDP run.
  Simulation seq_sim(&city.graph, city.labels.get(), workers, &city.requests,
                     base_options);
  const SimReport seq = seq_sim.Run(MakePruneGreedyDpFactory({}));
  record(seq, /*window_s=*/0.0);

  const std::vector<double> windows =
      smoke ? std::vector<double>{0.0, 6.0} :
              std::vector<double>{0.0, 2.0, 6.0, 15.0};
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};

  TablePrinter t({"window (s)", "threads", "wall (s)", "req/s",
                  "unified cost", "served", "identical"});
  bool all_identical = true;
  bool any_compared = false;
  for (double window_s : windows) {
    // Gate reference per window: the sequential pruneGreedyDP run for
    // window = 0 (the acceptance bar), the same window's threads = 1 run
    // for real windows (thread-count independence of the parallel
    // machinery). DNF rows cannot be compared — see
    // bench_parallel_scaling for the rationale.
    SimReport ref = seq;
    for (int threads : thread_counts) {
      SimOptions options = base_options;
      options.num_threads = threads;
      options.batch_window_s = window_s;
      Simulation sim(&city.graph, city.labels.get(), workers, &city.requests,
                     options);
      const SimReport rep = sim.Run(MakeDispatchWindowFactory({}));
      record(rep, window_s);
      if (window_s > 0.0 && threads == thread_counts.front()) ref = rep;
      const double rps =
          rep.wall_seconds > 0.0 ? rep.total_requests / rep.wall_seconds : 0.0;
      const bool comparable = !rep.timed_out && !ref.timed_out;
      const bool identical = comparable &&
                             rep.unified_cost == ref.unified_cost &&
                             rep.served_requests == ref.served_requests &&
                             rep.total_distance == ref.total_distance;
      any_compared = any_compared || comparable;
      all_identical = all_identical && (identical || !comparable);
      t.AddRow({Fmt(window_s), std::to_string(threads),
                TablePrinter::Num(rep.wall_seconds, 2),
                TablePrinter::Num(rps, 1),
                TablePrinter::Num(rep.unified_cost, 1),
                std::to_string(rep.served_requests),
                !comparable ? "DNF" : identical ? "YES" : "NO"});
    }
  }

  // The paper's batch baseline through the same window plumbing (its
  // classic 6-second interval), for a like-for-like quality comparison.
  for (double window_s : {6.0}) {
    SimOptions options = base_options;
    options.batch_window_s = window_s;
    Simulation sim(&city.graph, city.labels.get(), workers, &city.requests,
                   options);
    const SimReport rep = sim.Run(MakeBatchFactory({}));
    record(rep, window_s);
    const double rps =
        rep.wall_seconds > 0.0 ? rep.total_requests / rep.wall_seconds : 0.0;
    t.AddRow({Fmt(window_s), "1", TablePrinter::Num(rep.wall_seconds, 2),
              TablePrinter::Num(rps, 1),
              TablePrinter::Num(rep.unified_cost, 1),
              std::to_string(rep.served_requests), "-"});
  }
  std::printf("%s\n", t.ToString().c_str());

  WriteTrajectory("dispatch", smoke, lines);

  if (!all_identical) {
    std::printf("FAIL: dispatch results diverged (window=0 vs sequential "
                "pruneGreedyDP, or a window across thread counts)\n");
    return 1;
  }
  if (!any_compared) {
    std::printf("FAIL: all runs timed out before the identity gates could "
                "compare anything — raise URPSM_BENCH_WALL_LIMIT\n");
    return 1;
  }
  std::printf("window=0 identical to sequential AND windows thread-count "
              "independent: YES\n");
  return 0;
}
