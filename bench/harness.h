#ifndef URPSM_BENCH_HARNESS_H_
#define URPSM_BENCH_HARNESS_H_

// Shared harness for the paper-figure benchmarks (Figs. 3-7).
//
// Each bench binary sweeps one parameter of Table 5 over both cities and
// all five algorithms, printing one table per metric with the same rows/
// series as the paper's figures. Instances are scaled-down substitutes for
// the NYC/Chengdu taxi days (see DESIGN.md); set URPSM_BENCH_SCALE to
// grow/shrink them (default 1.0) and URPSM_BENCH_WALL_LIMIT to change the
// per-run kill switch in seconds (default 120; kinetic DNFs are reported
// as "DNF", matching the paper's 10/20-hour timeout behaviour).

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/algos/batch.h"
#include "src/algos/kinetic.h"
#include "src/algos/tshare.h"
#include "src/shortest/hub_labels.h"
#include "src/sim/simulator.h"
#include "src/util/table.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"

namespace urpsm::bench {

/// True when `--smoke` is on the command line. Smoke mode is the CTest
/// entry point for the bench binaries: it shrinks the instances to a few
/// seconds of work so every bench links AND runs on every commit.
inline bool SmokeRequested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") return true;
  }
  return false;
}

/// Call first thing in main(). In smoke mode, dials the environment knobs
/// down to tiny values (explicit URPSM_BENCH_* settings still win).
/// Returns true when smoke mode is active so benches with their own
/// hard-coded sweeps can shrink them too.
inline bool InitBench(int argc, char** argv) {
  if (!SmokeRequested(argc, argv)) return false;
  setenv("URPSM_BENCH_SCALE", "0.1", /*overwrite=*/0);
  setenv("URPSM_BENCH_REPEATS", "1", /*overwrite=*/0);
  setenv("URPSM_BENCH_WALL_LIMIT", "10", /*overwrite=*/0);
  return true;
}

inline double EnvScale() {
  const char* s = std::getenv("URPSM_BENCH_SCALE");
  return s != nullptr ? std::atof(s) : 1.0;
}

inline double EnvWallLimit() {
  const char* s = std::getenv("URPSM_BENCH_WALL_LIMIT");
  return s != nullptr ? std::atof(s) : 120.0;
}

/// Repetitions averaged per sweep point (the paper repeats each setting
/// 30 times on the full datasets; scaled-down default is 2).
inline int EnvRepeats() {
  const char* s = std::getenv("URPSM_BENCH_REPEATS");
  const int r = s != nullptr ? std::atoi(s) : 2;
  return r > 0 ? r : 1;
}

/// Table 5 defaults (bold entries), scaled to the synthetic cities.
struct Defaults {
  double grid_cell_km = 2.0;
  double deadline_min = 10.0;
  double capacity_mean = 4.0;
  double alpha = 1.0;
};

/// One evaluation city: config + graph + hub labels + base request set.
struct City {
  std::string name;
  bool is_nyc = false;
  RoadNetwork graph;
  std::unique_ptr<HubLabelOracle> labels;
  std::vector<Request> requests;  // Table-5 default deadlines/penalties
  std::vector<int> worker_sweep;  // Fig. 3 x-axis
  int default_workers = 0;
  double default_penalty_factor = 0.0;
  std::vector<double> penalty_sweep;  // Fig. 7 x-axis
};

inline City LoadCity(bool nyc) {
  const double s = EnvScale();
  City city;
  city.is_nyc = nyc;
  city.name = nyc ? "NYC" : "Chengdu";
  // Relative sizes follow Table 4 (NYC ~2x Chengdu requests, ~4x graph).
  city.graph = nyc ? MakeNycLike(0.12 * s, 1) : MakeChengduLike(0.12 * s, 2);
  city.labels = std::make_unique<HubLabelOracle>(HubLabelOracle::Build(city.graph));
  Rng rng(nyc ? 101 : 202);
  RequestParams rp;
  rp.count = static_cast<int>((nyc ? 3000 : 1600) * s);
  rp.duration_min = 1440.0;
  rp.deadline_offset_min = Defaults{}.deadline_min;
  rp.penalty_factor = nyc ? 20.0 : 10.0;  // Table 5: NYC penalties larger
  rp.seed = nyc ? 11 : 22;
  city.requests = GenerateRequests(city.graph, rp, city.labels.get(), &rng);
  city.default_penalty_factor = rp.penalty_factor;
  // Requests-per-worker matches the paper's scale (NYC 517k/30k ~ 17,
  // Chengdu 259k/10k ~ 26 at the defaults).
  if (nyc) {
    city.worker_sweep = {60, 120, 180, 240, 300};
    city.default_workers = 180;
    city.penalty_sweep = {10, 20, 30, 40, 50};
  } else {
    city.worker_sweep = {15, 30, 60, 120, 180};
    city.default_workers = 60;
    city.penalty_sweep = {2, 5, 10, 20, 30};
  }
  return city;
}

/// The five algorithms of Sec. 6, in the paper's presentation order.
inline std::vector<std::pair<std::string, PlannerFactory>> AllAlgorithms(
    PlannerConfig base, std::int64_t kinetic_budget = 20000) {
  return {
      {"tshare", MakeTShareFactory(base)},
      {"kinetic", MakeKineticFactory(base, kinetic_budget)},
      {"batch", MakeBatchFactory(base)},
      {"GreedyDP", MakeGreedyDpFactory(base)},
      {"pruneGreedyDP", MakePruneGreedyDpFactory(base)},
  };
}

/// Machine-readable result line for CI trajectory capture: one JSON
/// object per line, marked with a fixed `BENCH_JSON ` prefix so a CI step
/// can `grep '^BENCH_JSON ' | cut -c12- > BENCH_<name>.json` without
/// parsing the human-readable tables. Keys/values are plain ASCII; param
/// values are emitted as strings to keep the schema uniform.
/// Short git SHA identifying the tree the bench binary measured, cached
/// per process: URPSM_GIT_SHA wins (CI can inject the exact commit), then
/// `git rev-parse --short HEAD` (benches run from the repo root or the
/// build tree inside it), else "unknown". Attached to every BENCH_JSON
/// line so the cross-PR perf trajectory is attributable without
/// consulting git history for file mtimes.
inline const std::string& GitSha() {
  static const std::string sha = [] {
    // Whatever the source, the value is spliced into a JSON string, so
    // it must pass the same hex-only validation — a malformed
    // URPSM_GIT_SHA (quotes, refs, whitespace) must not corrupt every
    // record of the run.
    const auto sanitize = [](std::string s) {
      while (!s.empty() &&
             std::isspace(static_cast<unsigned char>(s.back()))) {
        s.pop_back();
      }
      if (s.empty() || s.size() > 40) return std::string("unknown");
      for (const char c : s) {
        if (!std::isxdigit(static_cast<unsigned char>(c))) {
          return std::string("unknown");
        }
      }
      return s;
    };
    if (const char* env = std::getenv("URPSM_GIT_SHA")) {
      return sanitize(env);
    }
    std::string out;
    if (std::FILE* p = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
      char buf[64];
      if (std::fgets(buf, sizeof(buf), p) != nullptr) out = buf;
      pclose(p);
    }
    return sanitize(std::move(out));
  }();
  return sha;
}

/// ISO-8601 UTC timestamp of the bench process start, cached so every
/// line of one run carries the same instant (records group per run).
inline const std::string& RunTimestamp() {
  static const std::string ts = [] {
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return std::string(buf);
  }();
  return ts;
}

/// Renders one BENCH_JSON result line. `p50_ms` / `p95_ms` / `p99_ms`
/// carry the per-operation latency distribution (per planned request for
/// the simulation benches, per query for the oracle benches) so that
/// tail-latency regressions at the oracle level are visible in the
/// trajectory, not just aggregate wall time; pass a negative value to
/// omit a percentile (older benches without per-op timing).
///
/// Every line also carries `hw_concurrency` — the hardware threads the
/// machine actually exposed — so a measurement from a 1-hardware-thread
/// CI container is machine-distinguishable from a real multicore run
/// (thread-count sweeps above hw_concurrency are oversubscription, not
/// speedup).
inline std::string FormatJsonLine(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& params,
    double wall_ms, double throughput, double p50_ms = -1.0,
    double p95_ms = -1.0, double p99_ms = -1.0) {
  std::string line = "{\"name\":\"" + name + "\",\"params\":{";
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i > 0) line += ",";
    line += "\"" + params[i].first + "\":\"" + params[i].second + "\"";
  }
  char tail[160];
  std::snprintf(tail, sizeof(tail), "},\"wall_ms\":%.6g,\"throughput\":%.6g",
                wall_ms, throughput);
  line += tail;
  if (p50_ms >= 0.0) {
    std::snprintf(tail, sizeof(tail), ",\"p50_ms\":%.6g", p50_ms);
    line += tail;
  }
  if (p95_ms >= 0.0) {
    std::snprintf(tail, sizeof(tail), ",\"p95_ms\":%.6g", p95_ms);
    line += tail;
  }
  if (p99_ms >= 0.0) {
    std::snprintf(tail, sizeof(tail), ",\"p99_ms\":%.6g", p99_ms);
    line += tail;
  }
  std::snprintf(tail, sizeof(tail), ",\"hw_concurrency\":%u",
                std::thread::hardware_concurrency());
  line += tail;
  // Provenance: which commit produced the number, and when. Every
  // BENCH_*.json line carries both so the perf trajectory across PRs is
  // self-describing.
  line += ",\"git_sha\":\"" + GitSha() + "\"";
  line += ",\"timestamp\":\"" + RunTimestamp() + "\"";
  line += "}";
  return line;
}

inline void EmitJsonLine(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& params,
    double wall_ms, double throughput, double p50_ms = -1.0,
    double p95_ms = -1.0, double p99_ms = -1.0) {
  std::printf("BENCH_JSON %s\n",
              FormatJsonLine(name, params, wall_ms, throughput, p50_ms,
                             p95_ms, p99_ms).c_str());
}

/// Where the trajectory for `stem` goes. Full runs write the tracked
/// repo-root file `BENCH_<stem>.json` (the CTest entries run the benches
/// from the repository root). Smoke runs are REDIRECTED to
/// `<URPSM_BENCH_OUT_DIR or .>/BENCH_smoke_<stem>.json` — the CTest
/// smoke entries set URPSM_BENCH_OUT_DIR to the build tree, so a
/// smoke-sized refresh can never overwrite a tracked full-run
/// trajectory (which is exactly how the repo-root files were corrupted
/// before: every `ctest -L bench_smoke` run from the repo root clobbered
/// the full-run sweeps with millisecond smoke records).
inline std::string TrajectoryPath(const std::string& stem, bool smoke) {
  if (!smoke) return "BENCH_" + stem + ".json";
  const char* dir = std::getenv("URPSM_BENCH_OUT_DIR");
  const std::string base =
      (dir != nullptr && *dir != '\0') ? std::string(dir) : std::string(".");
  return base + "/BENCH_smoke_" + stem + ".json";
}

/// Writes one trajectory file (one JSON object per line). Second line of
/// defense behind TrajectoryPath's redirection: a smoke run that somehow
/// resolves to a tracked-trajectory path — `BENCH_*.json` with no
/// directory component and no `smoke` in the filename — is refused
/// outright rather than written, so the tracked full-run files cannot be
/// corrupted even by a caller that builds its own path.
inline void WriteTrajectoryFile(const std::string& path, bool smoke,
                                const std::vector<std::string>& lines) {
  if (smoke) {
    const std::size_t slash = path.find_last_of('/');
    const std::string file =
        slash == std::string::npos ? path : path.substr(slash + 1);
    if (slash == std::string::npos && file.rfind("BENCH_", 0) == 0 &&
        file.find("smoke") == std::string::npos) {
      std::fprintf(stderr,
                   "bench harness: REFUSING smoke-mode write to tracked "
                   "trajectory %s (smoke runs go to BENCH_smoke_*.json)\n",
                   path.c_str());
      return;
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench harness: cannot write %s\n", path.c_str());
    return;
  }
  for (const std::string& line : lines) std::fprintf(f, "%s\n", line.c_str());
  std::fclose(f);
  std::printf("wrote %s (%zu records)\n", path.c_str(), lines.size());
}

/// Convenience: resolve the path for `stem` (with smoke redirection) and
/// write the lines there.
inline void WriteTrajectory(const std::string& stem, bool smoke,
                            const std::vector<std::string>& lines) {
  WriteTrajectoryFile(TrajectoryPath(stem, smoke), smoke, lines);
}

/// EmitJsonLine for one simulation run: wall time in ms, throughput in
/// requests planned per second of total wall time, and the per-request
/// planning-latency percentiles. The run's thread count rides along in
/// the params (complementing the line-level hw_concurrency field).
inline void EmitReportJson(
    const std::string& name, const SimReport& rep,
    std::vector<std::pair<std::string, std::string>> params) {
  params.emplace_back("algorithm", rep.algorithm);
  params.emplace_back("num_threads", std::to_string(rep.num_threads));
  if (rep.timed_out) params.emplace_back("timed_out", "1");
  // Whether span tracing was live for this run: tracing adds work on the
  // engine threads, so a traced measurement must be distinguishable from
  // an untraced one in the trajectory.
  params.emplace_back("trace", rep.trace_enabled ? "1" : "0");
  // Registry snapshot (empty unless SimOptions::collect_metrics): each
  // metric rides along as an "m."-prefixed param so observability runs
  // carry their engine counters in the same machine-readable line.
  for (const auto& [key, value] : rep.metrics) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    params.emplace_back("m." + key, buf);
  }
  const double throughput =
      rep.wall_seconds > 0.0 ? rep.total_requests / rep.wall_seconds : 0.0;
  EmitJsonLine(name, params, rep.wall_seconds * 1e3, throughput,
               rep.p50_response_ms, rep.p95_response_ms,
               rep.p99_response_ms);
}

/// Grid of results: one SimReport per (algorithm, sweep value).
struct FigureResults {
  std::vector<std::string> algorithms;
  std::vector<std::string> value_labels;
  // reports[a][v]
  std::vector<std::vector<SimReport>> reports;
};

/// Runs `factories` against per-value instances produced by `make_run`
/// (worker list + request list may vary with the sweep value) and averages
/// EnvRepeats() repetitions with different worker placements, as the
/// paper's protocol does.
template <typename MakeRun>
FigureResults RunSweep(
    const City& city,
    const std::vector<std::pair<std::string, PlannerFactory>>& factories,
    const std::vector<double>& values, MakeRun&& make_run) {
  FigureResults out;
  for (const auto& [name, factory] : factories) out.algorithms.push_back(name);
  out.reports.resize(factories.size());
  const int repeats = EnvRepeats();
  for (double v : values) {
    char label[64];
    std::snprintf(label, sizeof(label), "%g", v);
    out.value_labels.push_back(label);
    std::vector<std::vector<SimReport>> runs(factories.size());
    for (int rep = 0; rep < repeats; ++rep) {
      std::vector<Worker> workers;
      std::vector<Request> requests;
      SimOptions options;
      options.wall_limit_seconds = EnvWallLimit();
      make_run(v, rep, &workers, &requests, &options);
      for (std::size_t a = 0; a < factories.size(); ++a) {
        Simulation sim(&city.graph, city.labels.get(), workers, &requests,
                       options);
        runs[a].push_back(sim.Run(factories[a].second));
      }
    }
    for (std::size_t a = 0; a < factories.size(); ++a) {
      out.reports[a].push_back(AverageReports(runs[a]));
    }
  }
  return out;
}

/// Prints the three headline metrics (and optional extras) in the shape of
/// the paper's figure panels: rows = sweep values, columns = algorithms.
inline void PrintFigure(const std::string& figure_title,
                        const std::string& param_name, const City& city,
                        const FigureResults& r) {
  const auto metric_table =
      [&](const std::string& metric,
          const std::function<std::string(const SimReport&)>& get) {
        std::vector<std::string> headers = {param_name};
        for (const auto& a : r.algorithms) headers.push_back(a);
        TablePrinter t(headers);
        for (std::size_t v = 0; v < r.value_labels.size(); ++v) {
          std::vector<std::string> row = {r.value_labels[v]};
          for (std::size_t a = 0; a < r.algorithms.size(); ++a) {
            const SimReport& rep = r.reports[a][v];
            row.push_back(rep.timed_out ? "DNF" : get(rep));
          }
          t.AddRow(std::move(row));
        }
        std::printf("%s — %s (%s)\n%s\n", figure_title.c_str(),
                    metric.c_str(), city.name.c_str(), t.ToString().c_str());
      };
  metric_table("Unified cost", [](const SimReport& rep) {
    return TablePrinter::Num(rep.unified_cost, 1);
  });
  metric_table("Served rate", [](const SimReport& rep) {
    return TablePrinter::Num(rep.served_rate, 3);
  });
  metric_table("Avg response time (ms)", [](const SimReport& rep) {
    return TablePrinter::Num(rep.avg_response_ms, 3);
  });
  // One machine-readable line per (algorithm, sweep value) so CI can
  // capture BENCH_*.json trajectories alongside the tables.
  for (std::size_t a = 0; a < r.algorithms.size(); ++a) {
    for (std::size_t v = 0; v < r.value_labels.size(); ++v) {
      EmitReportJson(figure_title, r.reports[a][v],
                     {{"city", city.name}, {param_name, r.value_labels[v]}});
    }
  }
}

}  // namespace urpsm::bench

#endif  // URPSM_BENCH_HARNESS_H_
