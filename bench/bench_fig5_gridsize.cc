// Fig. 5 reproduction: impact of the grid size g (1-5 km) plus the grid
// index memory panel — tshare's per-cell sorted cell lists dominate all
// other algorithms' plain grids, especially at small g.

#include <cstdio>

#include "bench/harness.h"

using namespace urpsm;
using namespace urpsm::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  const std::vector<double> g_sweep = {1, 2, 3, 4, 5};
  for (bool nyc : {false, true}) {
    const City city = LoadCity(nyc);
    std::printf("=== Fig. 5 (%s): %d vertices, %zu requests ===\n\n",
                city.name.c_str(), city.graph.num_vertices(),
                city.requests.size());
    const Defaults d;

    FigureResults all;
    for (double g : g_sweep) {
      PlannerConfig cfg;
      cfg.alpha = d.alpha;
      cfg.grid_cell_km = g;
      const auto factories = AllAlgorithms(cfg);
      const FigureResults r = RunSweep(
          city, factories, {g},
          [&](double, int rep, std::vector<Worker>* workers,
              std::vector<Request>* requests, SimOptions* /*options*/) {
            Rng rng(77 + static_cast<std::uint64_t>(rep) * 7717);
            *workers = GenerateWorkers(city.graph, city.default_workers,
                                       d.capacity_mean, &rng);
            *requests = city.requests;
          });
      if (all.algorithms.empty()) {
        all.algorithms = r.algorithms;
        all.reports.resize(r.algorithms.size());
      }
      all.value_labels.push_back(r.value_labels[0]);
      for (std::size_t a = 0; a < r.algorithms.size(); ++a) {
        all.reports[a].push_back(r.reports[a][0]);
      }
    }
    PrintFigure("Fig. 5", "g (km)", city, all);

    TablePrinter mem({"g (km)", "tshare index (KB)", "others index (KB)"});
    for (std::size_t v = 0; v < all.value_labels.size(); ++v) {
      mem.AddRow({all.value_labels[v],
                  TablePrinter::Num(all.reports[0][v].index_memory_bytes /
                                        1024.0, 1),
                  TablePrinter::Num(all.reports[4][v].index_memory_bytes /
                                        1024.0, 1)});
    }
    std::printf("Fig. 5 — grid index memory (%s)\n%s\n", city.name.c_str(),
                mem.ToString().c_str());
  }
  return 0;
}
