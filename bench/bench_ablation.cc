// Ablations of the design choices DESIGN.md calls out, beyond the Lemma-8
// pruning ablation (bench_pruning):
//   (a) exact-reject check: re-reject on the exact Delta* instead of only
//       the decision phase's lower bound (off in the paper);
//   (b) LRU cache capacity for distance queries (the paper's shared
//       cache, Sec. 6.1);
//   (c) batch parameters: window length and group size;
//   (d) kinetic expansion budget (how the tree blow-up is contained).

#include <cstdio>

#include "bench/harness.h"

using namespace urpsm;
using namespace urpsm::bench;

int main(int argc, char** argv) {
  InitBench(argc, argv);
  const City city = LoadCity(/*nyc=*/false);
  Rng rng(3);
  const Defaults d;
  const std::vector<Worker> workers = GenerateWorkers(
      city.graph, city.default_workers, d.capacity_mean, &rng);

  // (a) exact reject check.
  {
    TablePrinter t({"exact_reject_check", "unified cost", "served rate"});
    for (bool on : {false, true}) {
      PlannerConfig cfg;
      cfg.exact_reject_check = on;
      Simulation sim(&city.graph, city.labels.get(), workers, &city.requests,
                     SimOptions{});
      const SimReport rep = sim.Run(MakePruneGreedyDpFactory(cfg));
      t.AddRow({on ? "on" : "off (paper)",
                TablePrinter::Num(rep.unified_cost, 1),
                TablePrinter::Num(rep.served_rate, 3)});
    }
    std::printf("Ablation (a) — exact reject check (Chengdu)\n%s\n",
                t.ToString().c_str());
  }

  // (b) LRU cache capacity.
  {
    TablePrinter t({"cache entries", "inner oracle queries", "cache hits",
                    "avg resp (ms)"});
    for (std::size_t cap : {std::size_t{0}, std::size_t{1} << 10,
                            std::size_t{1} << 16, std::size_t{1} << 20}) {
      SimOptions options;
      options.cache_capacity = cap;
      city.labels->ResetQueryCount();
      Simulation sim(&city.graph, city.labels.get(), workers, &city.requests,
                     options);
      const SimReport rep = sim.Run(MakePruneGreedyDpFactory({}));
      t.AddRow({std::to_string(cap),
                std::to_string(city.labels->query_count()),
                std::to_string(rep.distance_queries -
                               city.labels->query_count()),
                TablePrinter::Num(rep.avg_response_ms, 3)});
    }
    std::printf("Ablation (b) — shared LRU distance cache (Chengdu)\n%s\n",
                t.ToString().c_str());
  }

  // (c) batch window and group size.
  {
    TablePrinter t({"window (s)", "group size", "unified cost",
                    "served rate"});
    for (double window_min : {0.05, 0.1, 0.5, 2.0}) {
      for (int group : {1, 3, 6}) {
        Simulation sim(&city.graph, city.labels.get(), workers,
                       &city.requests, SimOptions{});
        const SimReport rep =
            sim.Run(MakeBatchFactory({}, window_min, group));
        t.AddRow({TablePrinter::Num(window_min * 60.0, 0),
                  std::to_string(group),
                  TablePrinter::Num(rep.unified_cost, 1),
                  TablePrinter::Num(rep.served_rate, 3)});
      }
    }
    std::printf("Ablation (c) — batch parameters (Chengdu)\n%s\n",
                t.ToString().c_str());
  }

  // (d) kinetic expansion budget.
  {
    TablePrinter t({"budget", "unified cost", "served rate",
                    "avg resp (ms)"});
    std::vector<Request> requests = city.requests;
    SetDeadlineOffsets(&requests, 20.0);  // longer routes stress the tree
    SetPenaltyFactors(&requests, city.default_penalty_factor,
                      city.labels.get());
    for (std::int64_t budget : {200, 2000, 20000, 200000}) {
      SimOptions options;
      options.wall_limit_seconds = EnvWallLimit();
      Simulation sim(&city.graph, city.labels.get(), workers, &requests,
                     options);
      const SimReport rep = sim.Run(MakeKineticFactory({}, budget));
      t.AddRow({std::to_string(budget),
                rep.timed_out ? "DNF" : TablePrinter::Num(rep.unified_cost, 1),
                TablePrinter::Num(rep.served_rate, 3),
                TablePrinter::Num(rep.avg_response_ms, 3)});
    }
    std::printf("Ablation (d) — kinetic expansion budget (Chengdu, er = 20 "
                "min)\n%s\n",
                t.ToString().c_str());
  }
  return 0;
}
