// Empirical competitive ratio: pruneGreedyDP vs the clairvoyant offline
// optimum on small random instances. The paper proves no online algorithm
// has a constant competitive ratio (Theorem 1) but reports no measured
// gaps; this quantifies how far the greedy heuristic actually is from
// optimal on benign (non-adversarial) workloads — context for why the
// heuristic is "practically effective" (Sec. 4 intro) despite the
// worst-case impossibility.

#include <cstdio>

#include "bench/harness.h"
#include "src/core/offline.h"
#include "src/sim/simulator.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"

using namespace urpsm;

int main(int argc, char** argv) {
  const bool smoke = urpsm::bench::InitBench(argc, argv);
  TablePrinter t({"requests", "mean UC ratio", "p95 UC ratio", "max",
                  "online served", "OPT served"});
  const std::vector<int> nreq_sweep =
      smoke ? std::vector<int>{4} : std::vector<int>{4, 6, 8};
  std::string instances_label;
  for (int nreq : nreq_sweep) {
    // The clairvoyant solver is exponential; shrink the sample as the
    // instance grows to keep the bench under ~2 minutes.
    const int kInstances =
        smoke ? 2 : (nreq <= 4 ? 30 : (nreq <= 6 ? 20 : 8));
    if (!instances_label.empty()) instances_label += "/";
    instances_label += std::to_string(kInstances);
    StatsAccumulator ratio;
    int online_served = 0, opt_served = 0;
    for (int k = 0; k < kInstances; ++k) {
      const std::uint64_t seed = static_cast<std::uint64_t>(k) * 997 + nreq;
      const RoadNetwork g = MakeChengduLike(0.02, seed);
      DijkstraOracle oracle(&g);
      Rng rng(seed);
      std::vector<Worker> workers = GenerateWorkers(g, 2, 3.0, &rng);
      RequestParams rp;
      rp.count = nreq;
      rp.duration_min = 40.0;
      rp.deadline_offset_min = 15.0;
      rp.seed = seed + 1;
      std::vector<Request> requests = GenerateRequests(g, rp, &oracle, &rng);

      PlanningContext ctx(&g, &oracle, &requests);
      const OfflineSolution opt = SolveOffline(workers, requests, 1.0, &ctx);
      Simulation sim(&g, &oracle, workers, &requests, SimOptions{});
      const SimReport online = sim.Run(MakePruneGreedyDpFactory({}));
      if (opt.unified_cost > 1e-9) {
        ratio.Add(online.unified_cost / opt.unified_cost);
      }
      online_served += online.served_requests;
      opt_served += opt.served;
    }
    t.AddRow({std::to_string(nreq), TablePrinter::Num(ratio.mean(), 3),
              TablePrinter::Num(ratio.Percentile(95), 3),
              TablePrinter::Num(ratio.max(), 3),
              std::to_string(online_served), std::to_string(opt_served)});
  }
  std::printf("pruneGreedyDP vs clairvoyant optimum (2 workers, "
              "Chengdu-like; %s instances per row)\n\n%s",
              instances_label.c_str(), t.ToString().c_str());
  return 0;
}
