// Pipelined dispatch-engine trajectory bench: the dispatch-window engine
// swept over window length x thread count x pipeline on/off x slot-ring
// depth, recording throughput, latency percentiles and the pipeline
// stage/occupancy counters (queue depth, backpressure, plan/commit stage
// time, speculation hits/misses).
//
// Writes BENCH_pipeline.json (one JSON object per line, the shared
// BENCH_JSON schema — every line carries hw_concurrency, num_threads,
// git_sha and timestamp) via the shared trajectory writer: full runs
// refresh the tracked repo-root file, smoke runs are redirected to the
// build tree (BENCH_smoke_pipeline.json) so the CTest smoke entry can
// never corrupt the full-run trajectory. Determinism gates: for every
// (window, mode) the deterministic report fields must be bit-identical
// across thread counts AND ring depths, and the pipelined runs must be
// ingest-queue-capacity independent.
//
// Overload axis: arrival-rate multipliers {1, 2, 4} compress release
// times while preserving each request's deadline gap (ingress slack is
// unchanged), so a fixed per-window admit budget turns rising arrival
// rate into shed load. Those records carry arrival_mult, policy,
// shed_rate, deadline_miss_rate and the admission-latency p50/p95/p99;
// the shed/rejected/dnf accounting must be bit-identical across thread
// counts, and CheckAccounting must pass on every recorded report.
//
// Speculation-conflict axis: a scarce fleet under compressed arrivals at
// ring depth 4 makes consecutive windows contend for the same few
// workers, so speculative scans are invalidated at commit time and the
// replan path runs hot. The axis records each run's memo counters
// (memo_hits/memo_misses/memo_saved_queries, replans_narrowed/
// replans_full) and the replan wall time (collect_metrics snapshots the
// engine.spec.replan_ms / engine.commit.replan_ms histograms) with the
// eval memo off ("before") and on ("after"). Gates: the memoized runs
// must reproduce the fresh runs bit-identically — including
// distance_queries, i.e. a memo hit re-bills exactly the queries a fresh
// evaluation would issue — the memo-off runs must record zero memo
// traffic, and the memo-on runs must actually exercise the memo
// (hit + miss > 0, the wiring tripwire CI's bench-smoke gate relies on).
//
// Note: thread counts beyond std::thread::hardware_concurrency (1 in the
// usual CI container — see the hw_concurrency field) oversubscribe and
// mainly validate determinism, not speedup; the same goes for the
// ingest/plan/commit thread overlap itself.

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "src/sim/dispatch_window.h"

using namespace urpsm;
using namespace urpsm::bench;

namespace {

std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

bool SameResults(const SimReport& a, const SimReport& b) {
  return a.unified_cost == b.unified_cost &&
         a.served_requests == b.served_requests &&
         a.total_distance == b.total_distance &&
         a.distance_queries == b.distance_queries;
}

// Overload runs additionally gate the whole accounting partition: the
// shed/rejected/dnf split must be a pure function of simulated
// quantities, so it must not move with the thread count.
bool SameOverloadResults(const SimReport& a, const SimReport& b) {
  return SameResults(a, b) && a.rejected_requests == b.rejected_requests &&
         a.shed_requests == b.shed_requests &&
         a.dnf_requests == b.dnf_requests &&
         a.shed_deadline == b.shed_deadline &&
         a.shed_overload == b.shed_overload && a.shed_drain == b.shed_drain;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = InitBench(argc, argv);
  const City city = LoadCity(/*nyc=*/false);
  Rng rng(7);
  const Defaults d;
  const int worker_count = smoke ? 40 : 2 * city.default_workers;
  const std::vector<Worker> workers =
      GenerateWorkers(city.graph, worker_count, d.capacity_mean, &rng);

  std::printf("=== Pipelined dispatch (%s, %zu requests, %d workers, "
              "hardware threads: %u) ===\n\n",
              city.name.c_str(), city.requests.size(), worker_count,
              std::thread::hardware_concurrency());

  SimOptions base_options;
  base_options.wall_limit_seconds = EnvWallLimit();

  std::vector<std::string> lines;
  bool accounting_ok = true;
  const auto record =
      [&](const SimReport& rep, double window_s, bool pipeline,
          const std::vector<std::pair<std::string, std::string>>& extra =
              {}) {
    const InvariantReport acc = CheckAccounting(rep);
    if (!acc.ok) {
      accounting_ok = false;
      std::printf("FAIL: accounting violation: %s\n", acc.violation.c_str());
    }
    std::vector<std::pair<std::string, std::string>> params = {
        {"city", city.name},
        {"window_s", Fmt(window_s)},
        {"pipeline", pipeline ? "1" : "0"},
        {"algorithm", rep.algorithm},
        {"num_threads", std::to_string(rep.num_threads)}};
    params.insert(params.end(), extra.begin(), extra.end());
    if (pipeline) {
      const PipelineStats& ps = rep.pipeline;
      params.emplace_back("depth", std::to_string(ps.depth));
      params.emplace_back("occupancy", Fmt(ps.occupancy));
      params.emplace_back("max_queue_depth",
                          std::to_string(ps.max_queue_depth));
      params.emplace_back("backpressure_waits",
                          std::to_string(ps.backpressure_waits));
      params.emplace_back("windows", std::to_string(ps.windows));
      params.emplace_back("plan_ms", Fmt(ps.plan_ms));
      params.emplace_back("commit_ms", Fmt(ps.commit_ms));
      params.emplace_back("speculation_hits",
                          std::to_string(ps.speculation_hits));
      params.emplace_back("speculation_misses",
                          std::to_string(ps.speculation_misses));
    }
    if (smoke) params.emplace_back("smoke", "1");
    if (rep.timed_out) params.emplace_back("timed_out", "1");
    params.emplace_back("trace", rep.trace_enabled ? "1" : "0");
    const double throughput =
        rep.wall_seconds > 0.0 ? rep.total_requests / rep.wall_seconds : 0.0;
    lines.push_back(FormatJsonLine("bench_pipeline", params,
                                   rep.wall_seconds * 1e3, throughput,
                                   rep.p50_response_ms, rep.p95_response_ms,
                                   rep.p99_response_ms));
  };

  const std::vector<double> windows =
      smoke ? std::vector<double>{6.0} : std::vector<double>{2.0, 6.0, 15.0};
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
  // The depth axis: the classic double buffer at the full thread sweep,
  // deeper (speculating) rings at the sweep's endpoints — enough to gate
  // depth-independence without tripling the bench's wall time.
  std::vector<std::pair<int, int>> pipe_combos;  // (depth, threads)
  for (int threads : thread_counts) pipe_combos.emplace_back(2, threads);
  for (int depth : smoke ? std::vector<int>{4} : std::vector<int>{3, 4}) {
    pipe_combos.emplace_back(depth, thread_counts.front());
    pipe_combos.emplace_back(depth, thread_counts.back());
  }

  TablePrinter t({"window (s)", "pipeline", "depth", "threads", "wall (s)",
                  "req/s", "occupancy", "unified cost", "served",
                  "identical"});
  bool all_identical = true;
  bool any_compared = false;
  const auto run_one = [&](double window_s, bool pipeline, int depth,
                           int threads, SimReport* ref, bool* have_ref) {
    SimOptions options = base_options;
    options.num_threads = threads;
    options.batch_window_s = window_s;
    options.pipeline = pipeline;
    options.pipeline_depth = depth;
    Simulation sim(&city.graph, city.labels.get(), workers, &city.requests,
                   options);
    const SimReport rep = sim.Run(MakeDispatchWindowFactory({}));
    record(rep, window_s, pipeline);
    if (!*have_ref) {
      *ref = rep;
      *have_ref = true;
    }
    const double rps = rep.wall_seconds > 0.0
                           ? rep.total_requests / rep.wall_seconds
                           : 0.0;
    const bool comparable = !rep.timed_out && !ref->timed_out;
    const bool identical = comparable && SameResults(rep, *ref);
    any_compared = any_compared || comparable;
    all_identical = all_identical && (identical || !comparable);
    t.AddRow({Fmt(window_s), pipeline ? "on" : "off",
              pipeline ? std::to_string(depth) : std::string("-"),
              std::to_string(threads), TablePrinter::Num(rep.wall_seconds, 2),
              TablePrinter::Num(rps, 1),
              pipeline ? TablePrinter::Num(rep.pipeline.occupancy, 2)
                       : std::string("-"),
              TablePrinter::Num(rep.unified_cost, 1),
              std::to_string(rep.served_requests),
              !comparable ? "DNF" : identical ? "YES" : "NO"});
  };
  for (double window_s : windows) {
    {  // lock-step windowed loop: thread-count identity only
      SimReport ref;
      bool have_ref = false;
      for (int threads : thread_counts) {
        run_one(window_s, /*pipeline=*/false, 2, threads, &ref, &have_ref);
      }
    }
    // Pipelined: thread-count AND ring-depth identity against one ref.
    SimReport ref;
    bool have_ref = false;
    for (const auto& [depth, threads] : pipe_combos) {
      run_one(window_s, /*pipeline=*/true, depth, threads, &ref, &have_ref);
    }
    // Queue-capacity independence gate for the pipelined runs: a tiny
    // queue (heavy backpressure) must not change any result.
    if (have_ref && !ref.timed_out) {
      SimOptions options = base_options;
      options.num_threads = thread_counts.back();
      options.batch_window_s = window_s;
      options.pipeline = true;
      options.ingest_capacity = 8;
      Simulation sim(&city.graph, city.labels.get(), workers, &city.requests,
                     options);
      const SimReport rep = sim.Run(MakeDispatchWindowFactory({}));
      record(rep, window_s, true);
      if (!rep.timed_out && !SameResults(rep, ref)) {
        all_identical = false;
        std::printf("FAIL: capacity=8 diverged at window=%g\n", window_s);
      }
    }
  }
  std::printf("%s\n", t.ToString().c_str());

  // ---- Overload axis: arrival-rate multiplier sweep ----
  // Release times are divided by the multiplier with each request's
  // deadline gap preserved, so ingress slack (deadline - release -
  // euclid) is unchanged and the per-window admit budget is the lever
  // that converts rising arrival rate into shed load. Policies are the
  // two shedding disciplines; kBlock is the (shed-free) baseline already
  // covered by the main sweep above.
  const double overload_window_s = smoke ? 6.0 : 15.0;
  const int overload_budget = 2;
  const std::vector<double> mults =
      smoke ? std::vector<double>{1.0, 4.0}
            : std::vector<double>{1.0, 2.0, 4.0};
  std::vector<std::pair<std::string, AdmissionPolicy>> policies = {
      {"shed_oldest_slack", AdmissionPolicy::kShedOldestSlack}};
  if (!smoke) {
    policies.emplace_back("reject_ingress", AdmissionPolicy::kRejectAtIngress);
  }
  TablePrinter ot({"mult", "policy", "threads", "wall (s)", "served",
                   "shed", "shed rate", "miss rate", "adm p95 (ms)",
                   "identical"});
  for (double mult : mults) {
    std::vector<Request> compressed = city.requests;
    for (Request& r : compressed) {
      const double gap = r.deadline - r.release_time;
      r.release_time /= mult;
      r.deadline = r.release_time + gap;
    }
    for (const auto& [policy_name, policy] : policies) {
      SimReport ref;
      bool have_ref = false;
      for (int threads : {thread_counts.front(), thread_counts.back()}) {
        SimOptions options = base_options;
        options.num_threads = threads;
        options.batch_window_s = overload_window_s;
        options.pipeline = true;
        options.admission_policy = policy;
        options.window_admit_budget = overload_budget;
        Simulation sim(&city.graph, city.labels.get(), workers, &compressed,
                       options);
        const SimReport rep = sim.Run(MakeDispatchWindowFactory({}));
        const double total = rep.total_requests > 0
                                 ? static_cast<double>(rep.total_requests)
                                 : 1.0;
        const double shed_rate = rep.shed_requests / total;
        // Deadline misses: requests that could not be served by their
        // deadline — planned-but-rejected plus shed for lack of slack.
        const double miss_rate =
            (rep.rejected_requests + static_cast<double>(rep.shed_deadline)) /
            total;
        const StatsAccumulator& adm = rep.pipeline.admission_latency_ms;
        record(rep, overload_window_s, /*pipeline=*/true,
               {{"arrival_mult", Fmt(mult)},
                {"policy", policy_name},
                {"admit_budget", std::to_string(overload_budget)},
                {"shed_rate", Fmt(shed_rate)},
                {"deadline_miss_rate", Fmt(miss_rate)},
                {"shed_deadline", std::to_string(rep.shed_deadline)},
                {"shed_overload", std::to_string(rep.shed_overload)},
                {"shed_drain", std::to_string(rep.shed_drain)},
                {"adm_p50_ms", Fmt(adm.Percentile(50))},
                {"adm_p95_ms", Fmt(adm.Percentile(95))},
                {"adm_p99_ms", Fmt(adm.Percentile(99))}});
        if (!have_ref) {
          ref = rep;
          have_ref = true;
        }
        const bool comparable = !rep.timed_out && !ref.timed_out;
        const bool identical = comparable && SameOverloadResults(rep, ref);
        any_compared = any_compared || comparable;
        all_identical = all_identical && (identical || !comparable);
        ot.AddRow({Fmt(mult), policy_name, std::to_string(threads),
                   TablePrinter::Num(rep.wall_seconds, 2),
                   std::to_string(rep.served_requests),
                   std::to_string(rep.shed_requests),
                   TablePrinter::Num(shed_rate, 3),
                   TablePrinter::Num(miss_rate, 3),
                   TablePrinter::Num(adm.Percentile(95), 3),
                   !comparable ? "DNF" : identical ? "YES" : "NO"});
      }
    }
  }
  std::printf("=== Overload (window %gs, admit budget %d) ===\n%s\n",
              overload_window_s, overload_budget, ot.ToString().c_str());

  // ---- Speculation-conflict axis: incremental replanning before/after ----
  bool memo_gate_ok = true;
  {
    const double conflict_window_s = 6.0;
    const double conflict_mult = 4.0;
    // Scarce fleet: few enough workers that consecutive windows keep
    // proposing insertions into the same routes, forcing commit-time
    // speculation conflicts (the workload the eval memo exists for).
    const std::size_t conflict_workers = smoke ? 6 : 12;
    const std::vector<Worker> scarce(
        workers.begin(),
        workers.begin() + std::min(conflict_workers, workers.size()));
    std::vector<Request> compressed = city.requests;
    for (Request& r : compressed) {
      const double gap = r.deadline - r.release_time;
      r.release_time /= conflict_mult;
      r.deadline = r.release_time + gap;
    }
    TablePrinter st({"memo", "threads", "wall (s)", "spec misses",
                     "memo hits", "memo misses", "narrowed", "full",
                     "replan (ms)", "identical"});
    SimReport ref;
    bool have_ref = false;
    for (const bool memo : {false, true}) {
      for (int threads : {thread_counts.front(), thread_counts.back()}) {
        SimOptions options = base_options;
        options.num_threads = threads;
        options.batch_window_s = conflict_window_s;
        options.pipeline = true;
        options.pipeline_depth = 4;
        options.collect_metrics = true;
        PlannerConfig cfg;
        cfg.use_eval_memo = memo;
        Simulation sim(&city.graph, city.labels.get(), scarce, &compressed,
                       options);
        const SimReport rep = sim.Run(MakeDispatchWindowFactory(cfg));
        const PipelineStats& ps = rep.pipeline;
        const auto metric = [&](const char* key) {
          const auto it = rep.metrics.find(key);
          return it == rep.metrics.end() ? 0.0 : it->second;
        };
        const double replan_ms = metric("engine.spec.replan_ms.sum") +
                                 metric("engine.commit.replan_ms.sum");
        record(rep, conflict_window_s, /*pipeline=*/true,
               {{"axis", "speculation_conflict"},
                {"arrival_mult", Fmt(conflict_mult)},
                {"memo", memo ? "1" : "0"},
                {"memo_hits", std::to_string(ps.memo_hits)},
                {"memo_misses", std::to_string(ps.memo_misses)},
                {"memo_saved_queries",
                 std::to_string(ps.memo_saved_queries)},
                {"replans_narrowed", std::to_string(ps.replans_narrowed)},
                {"replans_full", std::to_string(ps.replans_full)},
                {"replan_ms", Fmt(replan_ms)}});
        if (!have_ref) {
          ref = rep;
          have_ref = true;
        }
        const bool comparable = !rep.timed_out && !ref.timed_out;
        const bool identical = comparable && SameResults(rep, ref);
        any_compared = any_compared || comparable;
        all_identical = all_identical && (identical || !comparable);
        if (!memo && ps.memo_hits + ps.memo_misses != 0) {
          memo_gate_ok = false;
          std::printf("FAIL: memo-off run recorded memo traffic "
                      "(hits=%lld misses=%lld)\n",
                      static_cast<long long>(ps.memo_hits),
                      static_cast<long long>(ps.memo_misses));
        }
        if (memo && !rep.timed_out && ps.memo_hits + ps.memo_misses == 0) {
          memo_gate_ok = false;
          std::printf("FAIL: memo-on pipelined run recorded ZERO memo "
                      "traffic (memo.hit + memo.miss == 0) — the eval "
                      "memo is unwired\n");
        }
        st.AddRow({memo ? "on" : "off", std::to_string(threads),
                   TablePrinter::Num(rep.wall_seconds, 2),
                   std::to_string(ps.speculation_misses),
                   std::to_string(ps.memo_hits),
                   std::to_string(ps.memo_misses),
                   std::to_string(ps.replans_narrowed),
                   std::to_string(ps.replans_full),
                   TablePrinter::Num(replan_ms, 3),
                   !comparable ? "DNF" : identical ? "YES" : "NO"});
      }
    }
    std::printf("=== Speculation conflict (window %gs, mult %g, depth 4, "
                "%zu workers) ===\n%s\n",
                conflict_window_s, conflict_mult, scarce.size(),
                st.ToString().c_str());
  }

  WriteTrajectory("pipeline", smoke, lines);

  if (!accounting_ok) {
    std::printf("FAIL: overload accounting partition violated "
                "(served + rejected + shed + dnf != total)\n");
    return 1;
  }
  if (!all_identical) {
    std::printf("FAIL: pipeline results diverged (across thread counts, "
                "ring depths or ingest-queue capacities)\n");
    return 1;
  }
  if (!memo_gate_ok) {
    std::printf("FAIL: speculation_conflict memo gate violated (see above)\n");
    return 1;
  }
  if (!any_compared) {
    std::printf("FAIL: all runs timed out before the identity gates could "
                "compare anything — raise URPSM_BENCH_WALL_LIMIT\n");
    return 1;
  }
  std::printf("windows thread-count independent AND pipelined runs "
              "depth- and capacity-independent: YES\n");
  return 0;
}
