// Sec. 3.3 hardness constructions, empirically: on the cycle-graph
// adversary of Lemmas 1-3, the online algorithm's expected objective
// deteriorates without bound relative to the offline optimum as |V|
// grows. Reproduces the competitive-ratio blow-up that the proofs derive
// analytically.

#include <cstdio>

#include "bench/harness.h"
#include "src/core/objective.h"
#include "src/sim/simulator.h"
#include "src/util/table.h"
#include "src/workload/adversary.h"

using namespace urpsm;

namespace {

/// Expected unserved count of the online planner over `trials` draws.
double OnlineUnservedRate(int num_vertices, AdversaryLemma lemma,
                          int trials) {
  int unserved = 0;
  for (int t = 0; t < trials; ++t) {
    Rng rng(static_cast<std::uint64_t>(t) * 1009 + 17);
    const Instance inst =
        MakeCycleAdversary(num_vertices, lemma, /*epsilon=*/0.5, &rng);
    DijkstraOracle oracle(&inst.graph);
    SimOptions options;
    options.alpha = lemma == AdversaryLemma::kMaxServed ? 0.0 : 1.0;
    Simulation sim(&inst.graph, &oracle, inst.workers, &inst.requests,
                   options);
    const SimReport rep = sim.Run(MakePruneGreedyDpFactory(
        PlannerConfig{.alpha = options.alpha}));
    unserved += rep.total_requests - rep.served_requests;
  }
  return static_cast<double>(unserved) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = urpsm::bench::InitBench(argc, argv);
  const int kTrials = smoke ? 8 : 400;
  std::printf("Cycle-graph adversary (Lemma 1 distribution), %d draws per "
              "|V|.\nOPT always serves (E[OPT unserved] = 0); the ratio "
              "E[ALG]/E[OPT] is unbounded.\n\n",
              kTrials);
  TablePrinter t({"|V|", "E[ALG unserved]", "1 - 2/|V| (Lemma 1 bound)",
                  "E[OPT unserved]"});
  const std::vector<int> sweep =
      smoke ? std::vector<int>{8, 16} : std::vector<int>{8, 16, 32, 64, 128};
  for (int n : sweep) {
    const double alg = OnlineUnservedRate(n, AdversaryLemma::kMaxServed,
                                          kTrials);
    t.AddRow({std::to_string(n), TablePrinter::Num(alg, 3),
              TablePrinter::Num(AdversaryUnservedLowerBound(n), 3), "0"});
  }
  std::printf("%s\n", t.ToString().c_str());

  std::printf("Lemma 3 variant (alpha = 1, p_r -> inf): unified cost of the "
              "online algorithm vs OPT's <= |V| bound.\n\n");
  TablePrinter t3({"|V|", "E[ALG unified cost]", "OPT bound (<= |V|)",
                   "ratio (grows with p_r)"});
  const std::vector<int> sweep3 =
      smoke ? std::vector<int>{8} : std::vector<int>{8, 16, 32};
  for (int n : sweep3) {
    double alg_cost = 0.0;
    const int trials = smoke ? 4 : 100;
    for (int k = 0; k < trials; ++k) {
      Rng rng(static_cast<std::uint64_t>(k) * 733 + 5);
      const Instance inst =
          MakeCycleAdversary(n, AdversaryLemma::kMinDistance, 0.5, &rng);
      DijkstraOracle oracle(&inst.graph);
      Simulation sim(&inst.graph, &oracle, inst.workers, &inst.requests,
                     SimOptions{});
      alg_cost += sim.Run(MakePruneGreedyDpFactory({})).unified_cost;
    }
    alg_cost /= trials;
    t3.AddRow({std::to_string(n), TablePrinter::Num(alg_cost, 1),
               std::to_string(n),
               TablePrinter::Num(alg_cost / n, 1)});
  }
  std::printf("%s", t3.ToString().c_str());
  return 0;
}
