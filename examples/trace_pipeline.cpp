// Trace ingestion pipeline: the workflow the paper uses on the NYC TLC
// and Didi GAIA datasets, end to end on synthetic data —
//   1. raw trip records (CSV: timestamp + pickup/drop-off coordinates)
//   2. map endpoints to the closest road-network vertex
//   3. attach deadlines and distance-proportional penalties (Table 5)
//   4. replay the day through the planner.
//
// Swap step 1 for a real exported trace to run on actual taxi data.

#include <cstdio>
#include <string>

#include "src/shortest/hub_labels.h"
#include "src/sim/simulator.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"
#include "src/workload/trace.h"

using namespace urpsm;

int main() {
  const RoadNetwork graph = MakeNycLike(0.05, /*seed=*/13);
  HubLabelOracle labels = HubLabelOracle::Build(graph);

  // Step 1: fabricate a raw trace (in lieu of the TLC download) and round
  // -trip it through CSV, exactly as a real pipeline would.
  Rng rng(23);
  Point lo, hi;
  graph.BoundingBox(&lo, &hi);
  std::vector<TripRecord> trips;
  for (int i = 0; i < 800; ++i) {
    TripRecord t;
    t.release_min = rng.Uniform(0, 720);
    t.pickup = {rng.Uniform(lo.x, hi.x), rng.Uniform(lo.y, hi.y)};
    t.dropoff = {rng.Uniform(lo.x, hi.x), rng.Uniform(lo.y, hi.y)};
    t.passengers = 1 + (rng.UniformInt(0, 9) == 0 ? rng.UniformInt(1, 3) : 0);
    trips.push_back(t);
  }
  const std::string csv = "/tmp/urpsm_example_trips.csv";
  if (!SaveTripCsv(trips, csv)) {
    std::fprintf(stderr, "cannot write %s\n", csv.c_str());
    return 1;
  }
  std::vector<TripRecord> loaded;
  if (!LoadTripCsv(csv, &loaded)) {
    std::fprintf(stderr, "cannot read %s back\n", csv.c_str());
    return 1;
  }
  std::printf("trace file          : %s (%zu trips)\n", csv.c_str(),
              loaded.size());

  // Steps 2-3: vertex mapping + deadline/penalty attachment.
  const std::vector<Request> requests = RequestsFromTrips(
      graph, loaded, /*deadline_offset_min=*/10.0, /*penalty_factor=*/20.0,
      &labels);
  std::printf("mapped requests     : %zu (degenerate trips dropped)\n",
              requests.size());

  // Step 4: replay through pruneGreedyDP.
  std::vector<Worker> workers = GenerateWorkers(graph, 60, 4.0, &rng);
  Simulation sim(&graph, &labels, workers, &requests, SimOptions{});
  const SimReport rep = sim.Run(MakePruneGreedyDpFactory({}));
  std::printf("served              : %d / %d (%.1f%%)\n", rep.served_requests,
              rep.total_requests, 100 * rep.served_rate);
  std::printf("unified cost        : %.1f\n", rep.unified_cost);
  std::printf("avg decision time   : %.3f ms\n", rep.avg_response_ms);
  std::remove(csv.c_str());
  return 0;
}
