// Parallel dispatch: the same day simulated with the sequential
// pruneGreedyDP planner and with ParallelGreedyDpPlanner on a thread
// pool, demonstrating (1) how SimOptions::num_threads plumbs the pool
// through the simulation and (2) the engine's core guarantee — parallel
// results are bit-identical to sequential ones, only faster.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/parallel_dispatch

#include <algorithm>
#include <cstdio>
#include <thread>

#include "src/shortest/hub_labels.h"
#include "src/sim/simulator.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"

using namespace urpsm;

int main() {
  // A small Chengdu-like city, one morning of requests, a modest fleet.
  const RoadNetwork graph = MakeChengduLike(0.08, 2);
  HubLabelOracle labels = HubLabelOracle::Build(graph);
  Rng rng(5);
  RequestParams rp;
  rp.count = 600;
  rp.duration_min = 360.0;
  const std::vector<Request> requests = GenerateRequests(graph, rp, &labels, &rng);
  const std::vector<Worker> workers = GenerateWorkers(graph, 40, 4.0, &rng);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("parallel dispatch demo: %d requests, %zu workers, "
              "%u hardware threads\n\n",
              rp.count, workers.size(), hw);

  Simulation seq_sim(&graph, &labels, workers, &requests, SimOptions{});
  const SimReport seq = seq_sim.Run(MakePruneGreedyDpFactory({}));

  SimOptions par_options;
  par_options.num_threads = static_cast<int>(hw);
  Simulation par_sim(&graph, &labels, workers, &requests, par_options);
  const SimReport par = par_sim.Run(MakeParallelGreedyDpFactory({}));

  for (const SimReport* rep : {&seq, &par}) {
    std::printf("%-22s unified cost %9.1f | served %4d/%d | wall %6.2fs\n",
                rep->algorithm.c_str(), rep->unified_cost,
                rep->served_requests, rep->total_requests, rep->wall_seconds);
  }
  const bool identical = seq.unified_cost == par.unified_cost &&
                         seq.served_requests == par.served_requests &&
                         seq.total_distance == par.total_distance;
  std::printf("\nbit-identical results: %s | speedup: %.2fx\n",
              identical ? "YES" : "NO",
              seq.wall_seconds / std::max(1e-9, par.wall_seconds));
  return identical ? 0 : 1;
}
