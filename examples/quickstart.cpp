// Quickstart: plan routes for a toy ride-sharing scene on a small grid
// city, mirroring the paper's Example 1 setup (two workers, three
// dynamically released requests) on a concrete road network.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <cstdio>

#include "src/core/planner.h"
#include "src/graph/builders.h"
#include "src/shortest/oracle.h"
#include "src/sim/fleet.h"

using namespace urpsm;

int main() {
  // An 8x8 street grid with 400 m blocks.
  const RoadNetwork graph = MakeGridGraph(8, 8, 0.4);
  DijkstraOracle oracle(&graph);

  // Two vehicles with capacity 4, parked at opposite corners.
  std::vector<Worker> workers = {{0, 0, 4}, {1, 63, 4}};
  Fleet fleet(workers, &graph);

  // Three requests arriving over time: origin, destination, release time
  // (minutes), deadline, penalty, passengers.
  std::vector<Request> requests = {
      {0, 9, 36, 0.0, 12.0, 20.0, 1},   // released at t=0
      {1, 18, 45, 2.0, 14.0, 10.0, 2},  // released at t=2
      {2, 62, 37, 4.0, 11.0, 9.0, 1},   // released at t=4
  };

  PlanningContext ctx(&graph, &oracle, &requests);
  GreedyDpPlanner planner(&ctx, &fleet, PlannerConfig{});

  std::printf("URPSM quickstart: 2 workers, 3 requests, alpha = 1\n\n");
  for (const Request& r : requests) {
    fleet.AdvanceTo(r.release_time);
    const WorkerId w = planner.OnRequest(r);
    if (w == kInvalidWorker) {
      std::printf("t=%4.1f  request %d (v%d -> v%d): REJECTED (penalty %.1f)\n",
                  r.release_time, r.id, r.origin, r.destination, r.penalty);
      continue;
    }
    std::printf("t=%4.1f  request %d (v%d -> v%d): worker %d, route now:",
                r.release_time, r.id, r.origin, r.destination, w);
    const Route& route = fleet.route(w);
    std::printf(" [v%d @%.1f]", route.anchor(), route.anchor_time());
    for (int k = 1; k <= route.size(); ++k) {
      const Stop& s = route.stops()[static_cast<std::size_t>(k - 1)];
      std::printf(" -> %s%d@v%d(%.1f)",
                  s.kind == StopKind::kPickup ? "pick" : "drop", s.request,
                  s.location, route.ArrivalAt(k));
    }
    std::printf("\n");
  }

  fleet.FinishAll();
  double penalty = 0.0;
  int served = 0;
  for (const Request& r : requests) {
    if (fleet.DropoffTime(r.id) < kInf) {
      ++served;
    } else {
      penalty += r.penalty;
    }
  }
  std::printf("\nserved %d/3, total distance %.2f min, unified cost %.2f\n",
              served, fleet.committed_distance(),
              fleet.committed_distance() + penalty);
  return 0;
}
