// Simulates a full day of ride-sharing on a synthetic NYC-like city —
// the workload of the paper's evaluation (Sec. 6.1) at laptop scale —
// and prints the three headline metrics for pruneGreedyDP.
//
// Usage: ridesharing_day [num_workers] [num_requests] [scale]

#include <cstdio>
#include <cstdlib>

#include "src/shortest/hub_labels.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"

using namespace urpsm;

int main(int argc, char** argv) {
  const int num_workers = argc > 1 ? std::atoi(argv[1]) : 150;
  const int num_requests = argc > 2 ? std::atoi(argv[2]) : 3000;
  const double scale = argc > 3 ? std::atof(argv[3]) : 0.08;

  std::printf("Generating NYC-like city (scale %.2f)...\n", scale);
  const RoadNetwork graph = MakeNycLike(scale, /*seed=*/1);
  std::printf("  %d vertices, %lld edges\n", graph.num_vertices(),
              static_cast<long long>(graph.num_undirected_edges()));

  std::printf("Building hub labels (the paper's shortest-path oracle)...\n");
  HubLabelOracle labels = HubLabelOracle::Build(graph);
  std::printf("  avg label size %.1f, %.1f MB\n", labels.average_label_size(),
              labels.MemoryBytes() / 1048576.0);

  Rng rng(7);
  std::vector<Worker> workers = GenerateWorkers(graph, num_workers, 3.0, &rng);
  RequestParams rp;
  rp.count = num_requests;
  rp.deadline_offset_min = 10.0;  // Table 5 default
  rp.penalty_factor = 10.0;
  std::vector<Request> requests = GenerateRequests(graph, rp, &labels, &rng);
  std::printf("Simulating one day: %d workers, %d requests...\n\n",
              num_workers, num_requests);

  Simulation sim(&graph, &labels, workers, &requests, SimOptions{});
  const SimReport rep = sim.Run(MakePruneGreedyDpFactory({}));
  const InvariantReport inv = VerifyInvariants(sim.fleet(), requests);

  std::printf("algorithm        : %s\n", rep.algorithm.c_str());
  std::printf("served rate      : %.1f%% (%d / %d)\n", 100 * rep.served_rate,
              rep.served_requests, rep.total_requests);
  std::printf("unified cost     : %.1f\n", rep.unified_cost);
  std::printf("total distance   : %.1f vehicle-minutes\n", rep.total_distance);
  std::printf("avg response     : %.3f ms   (p95 %.3f, max %.3f)\n",
              rep.avg_response_ms, rep.p95_response_ms, rep.max_response_ms);
  std::printf("distance queries : %lld\n",
              static_cast<long long>(rep.distance_queries));
  std::printf("invariants       : %s\n", inv.ok ? "OK" : inv.violation.c_str());
  return inv.ok ? 0 : 1;
}
