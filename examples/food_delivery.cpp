// Food/parcel delivery scenario: couriers with box capacity carrying
// multiple orders at once. Shared mobility in the paper's sense covers
// exactly this case (Sec. 1) — a request's capacity K_r is "items in a
// courier's box" and deadlines are delivery promises.
//
// Demonstrates: the revenue objective preset (alpha = c_w,
// p_r = c_r * dis) and how Eq. (4) converts unified cost into revenue.

#include <cstdio>

#include "src/core/objective.h"
#include "src/shortest/hub_labels.h"
#include "src/sim/metrics.h"
#include "src/sim/simulator.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"

using namespace urpsm;

int main() {
  // A compact dense downtown: orders cluster around restaurants.
  const RoadNetwork graph = MakeChengduLike(0.06, /*seed=*/11);
  HubLabelOracle labels = HubLabelOracle::Build(graph);

  Rng rng(17);
  // 40 couriers; each box holds 8 order-units.
  std::vector<Worker> couriers = GenerateWorkers(graph, 40, 8.0, &rng);

  RequestParams rp;
  rp.count = 1200;
  rp.duration_min = 240.0;        // a lunch-through-dinner window
  rp.hotspot_count = 4;           // restaurant clusters
  rp.hotspot_stddev_km = 0.6;
  rp.uniform_fraction = 0.1;
  rp.deadline_offset_min = 20.0;  // delivery promise
  std::vector<Request> orders = GenerateRequests(graph, rp, &labels, &rng);
  for (Request& r : orders) r.capacity = 1 + (r.id % 3);  // 1-3 items

  // Revenue objective: couriers cost c_w per minute; an order pays
  // c_r per minute of direct distance.
  const double cw = 0.5, cr = 3.0;
  SetRevenuePenalties(&orders, cr, &labels);

  SimOptions options;
  options.alpha = cw;
  Simulation sim(&graph, &labels, couriers, &orders, options);
  const SimReport rep =
      sim.Run(MakePruneGreedyDpFactory(PlannerConfig{.alpha = cw}));
  const InvariantReport inv = VerifyInvariants(sim.fleet(), orders);

  const double revenue =
      Revenue(orders, sim.served(), rep.total_distance, cr, cw, &labels);

  std::printf("Food delivery on a Chengdu-like downtown\n");
  std::printf("  couriers           : 40 (box capacity ~8)\n");
  std::printf("  orders             : %d over %.0f min\n", rep.total_requests,
              rp.duration_min);
  std::printf("  delivered          : %d (%.1f%%)\n", rep.served_requests,
              100 * rep.served_rate);
  std::printf("  courier minutes    : %.1f\n", rep.total_distance);
  std::printf("  unified cost       : %.1f\n", rep.unified_cost);
  std::printf("  platform revenue   : %.1f  (Eq. 4 reduction)\n", revenue);
  std::printf("  avg decision time  : %.3f ms\n", rep.avg_response_ms);
  std::printf("  invariants         : %s\n",
              inv.ok ? "OK" : inv.violation.c_str());
  return inv.ok ? 0 : 1;
}
