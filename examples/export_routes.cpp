// Materializes planned routes into full vertex-level driving paths and
// exports them as GeoJSON (one LineString per vehicle) — the hand-off
// format a dispatch frontend or visualization notebook would consume.
//
// Usage: export_routes [output.geojson]

#include <cstdio>
#include <fstream>
#include <string>

#include "src/core/planner.h"
#include "src/shortest/hub_labels.h"
#include "src/sim/fleet.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"

using namespace urpsm;

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : "/tmp/urpsm_routes.geojson";

  const RoadNetwork graph = MakeChengduLike(0.06, 3);
  HubLabelOracle labels = HubLabelOracle::Build(graph);
  Rng rng(12);
  std::vector<Worker> workers = GenerateWorkers(graph, 8, 4.0, &rng);
  RequestParams rp;
  rp.count = 60;
  rp.duration_min = 60.0;
  rp.deadline_offset_min = 15.0;
  std::vector<Request> requests = GenerateRequests(graph, rp, &labels, &rng);

  Fleet fleet(workers, &graph);
  PlanningContext ctx(&graph, &labels, &requests);
  GreedyDpPlanner planner(&ctx, &fleet, PlannerConfig{});
  int served = 0;
  for (const Request& r : requests) {
    fleet.AdvanceTo(r.release_time);
    served += planner.OnRequest(r) != kInvalidWorker;
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << "{\"type\":\"FeatureCollection\",\"features\":[";
  bool first = true;
  int exported = 0;
  for (const Worker& w : workers) {
    const Route& route = fleet.route(w.id);
    if (route.empty()) continue;
    const std::vector<VertexId> path = route.MaterializePath(&labels);
    if (path.size() < 2) continue;
    if (!first) out << ",";
    first = false;
    ++exported;
    out << "{\"type\":\"Feature\",\"properties\":{\"worker\":" << w.id
        << ",\"stops\":" << route.size() << "},"
        << "\"geometry\":{\"type\":\"LineString\",\"coordinates\":[";
    for (std::size_t i = 0; i < path.size(); ++i) {
      const Point& p = graph.coord(path[i]);
      if (i) out << ",";
      out << "[" << p.x << "," << p.y << "]";
    }
    out << "]}}";
  }
  out << "]}\n";
  std::printf("served %d/%zu requests; exported %d active routes to %s\n",
              served, requests.size(), exported, out_path.c_str());
  return 0;
}
