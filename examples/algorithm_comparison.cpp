// Runs all five algorithms of the paper's evaluation on one shared
// workload and prints a Fig.3-style comparison row per algorithm:
// unified cost, served rate, response time, distance queries.
//
// Usage: algorithm_comparison [num_workers] [num_requests]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/algos/batch.h"
#include "src/algos/kinetic.h"
#include "src/algos/tshare.h"
#include "src/shortest/hub_labels.h"
#include "src/sim/simulator.h"
#include "src/util/table.h"
#include "src/workload/city.h"
#include "src/workload/requests.h"

using namespace urpsm;

int main(int argc, char** argv) {
  const int num_workers = argc > 1 ? std::atoi(argv[1]) : 60;
  const int num_requests = argc > 2 ? std::atoi(argv[2]) : 1200;

  const RoadNetwork graph = MakeChengduLike(0.08, 31);
  HubLabelOracle labels = HubLabelOracle::Build(graph);
  Rng rng(41);
  std::vector<Worker> workers = GenerateWorkers(graph, num_workers, 3.0, &rng);
  RequestParams rp;
  rp.count = num_requests;
  rp.duration_min = 480.0;
  std::vector<Request> requests = GenerateRequests(graph, rp, &labels, &rng);

  const std::vector<std::pair<const char*, PlannerFactory>> algos = {
      {"tshare", MakeTShareFactory({})},
      {"kinetic", MakeKineticFactory({})},
      {"batch", MakeBatchFactory({})},
      {"GreedyDP", MakeGreedyDpFactory({})},
      {"pruneGreedyDP", MakePruneGreedyDpFactory({})},
  };

  TablePrinter table({"algorithm", "unified cost", "served rate",
                      "avg resp (ms)", "dist queries"});
  for (const auto& [name, factory] : algos) {
    Simulation sim(&graph, &labels, workers, &requests, SimOptions{});
    const SimReport rep = sim.Run(factory);
    table.AddRow({name, TablePrinter::Num(rep.unified_cost, 1),
                  TablePrinter::Num(100 * rep.served_rate, 1) + "%",
                  TablePrinter::Num(rep.avg_response_ms, 3),
                  std::to_string(rep.distance_queries)});
  }
  std::printf("%d workers, %d requests, Chengdu-like city (%d vertices)\n\n",
              num_workers, num_requests, graph.num_vertices());
  std::printf("%s", table.ToString().c_str());
  return 0;
}
